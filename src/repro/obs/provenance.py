"""Provenance-aware saturation: who created every e-node, and what it earned.

The saturation engine can record, for every e-node it creates, the
``(rule, iteration, matched class, substitution digest)`` that produced it —
seed nodes (everything present when the recorder attaches to the e-graph)
are tagged ``"original"``, and unions record merge provenance.  Recording
follows the tracer-off idiom of :mod:`repro.obs.trace`: a module-global
recorder is installed explicitly (``with recording() as log: ...``), the
engine attaches it as an e-graph observer only when one is present, and the
common un-recorded path pays nothing.

Cross-process safety mirrors trace spans exactly: worker processes install a
fresh local :class:`ProvenanceLog`, run, and ship :meth:`ProvenanceLog.export`
(a plain picklable dict of records) back to the parent, which grafts it in
with :meth:`ProvenanceLog.merge` at the same barriers where span buffers are
merged (partition window collection, orchestrate job completion) — every
record carries the recording process's ``pid``.

Attribution (:func:`attribute_extraction`) closes the loop: it walks the
chosen e-nodes of a final extraction back through the log and emits a
:class:`RuleAttribution` report — per rule: matches → applications → nodes
surviving into the final circuit → net ``(ands, levels)`` contribution vs
the seed extraction (estimated by reverting the rule's surviving choices to
the seed structure and re-realizing).  One canonicalization subtlety makes
this work: congruence ``rebuild`` re-canonicalizes e-nodes *without* firing
observer callbacks, so records are matched to chosen nodes by
re-canonicalizing both under the e-graph's **final** union-find
(:meth:`ProvenanceLog.canonical_index`) instead of by creation-time identity.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MergeRecord",
    "NodeRecord",
    "ProvenanceLog",
    "RuleAttribution",
    "RuleYield",
    "attribute_extraction",
    "current_recorder",
    "install_recorder",
    "recording",
    "recording_enabled",
    "subst_digest",
    "uninstall_recorder",
]

#: The rule tag of nodes that predate recording (the seed circuit).
ORIGINAL = "original"

#: The rule tag of unions performed by congruence repair (no rule context).
REBUILD = "rebuild"

ATTRIBUTION_SCHEMA = 1
DERIVATION_SCHEMA = 1


def subst_digest(substitution: Dict[str, int]) -> str:
    """A short process-stable digest of a match substitution.

    ``hash()`` is randomized per process, which would make cross-process
    provenance buffers disagree with inline runs; CRC32 of the sorted items
    is deterministic everywhere and cheap enough for the recording path.
    """
    text = repr(sorted(substitution.items()))
    return "%08x" % (zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF)


class NodeRecord:
    """One e-node creation event: what was built and which rule built it."""

    __slots__ = (
        "class_id",
        "op",
        "children",
        "payload",
        "rule",
        "iteration",
        "matched_class",
        "subst",
        "pid",
        "extra",
    )

    def __init__(
        self,
        class_id: int,
        op: str,
        children: Tuple[int, ...],
        payload: Optional[str],
        rule: str,
        iteration: int,
        matched_class: Optional[int],
        subst: Optional[str],
        pid: int,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.class_id = class_id
        self.op = op
        self.children = children
        self.payload = payload
        self.rule = rule
        self.iteration = iteration
        self.matched_class = matched_class
        self.subst = subst
        self.pid = pid
        self.extra = extra or {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "class_id": self.class_id,
            "op": self.op,
            "children": list(self.children),
            "payload": self.payload,
            "rule": self.rule,
            "iteration": self.iteration,
            "matched_class": self.matched_class,
            "subst": self.subst,
            "pid": self.pid,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeRecord":
        return cls(
            class_id=int(data["class_id"]),
            op=str(data["op"]),
            children=tuple(int(c) for c in data.get("children", ())),
            payload=data.get("payload"),
            rule=str(data.get("rule", ORIGINAL)),
            iteration=int(data.get("iteration", -1)),
            matched_class=(
                None if data.get("matched_class") is None else int(data["matched_class"])
            ),
            subst=data.get("subst"),
            pid=int(data.get("pid", 0)),
            extra=dict(data.get("extra", {})),
        )


class MergeRecord:
    """One union event: which classes merged and under which rule context."""

    __slots__ = ("root", "other", "rule", "iteration", "pid", "extra")

    def __init__(
        self,
        root: int,
        other: int,
        rule: str,
        iteration: int,
        pid: int,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.root = root
        self.other = other
        self.rule = rule
        self.iteration = iteration
        self.pid = pid
        self.extra = extra or {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "other": self.other,
            "rule": self.rule,
            "iteration": self.iteration,
            "pid": self.pid,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MergeRecord":
        return cls(
            root=int(data["root"]),
            other=int(data["other"]),
            rule=str(data.get("rule", REBUILD)),
            iteration=int(data.get("iteration", -1)),
            pid=int(data.get("pid", 0)),
            extra=dict(data.get("extra", {})),
        )


class ProvenanceLog:
    """Creation/union provenance of one (or several merged) saturation runs.

    The log implements the e-graph observer protocol (``on_add``/``on_union``)
    and is attached by the saturation engine when it is the installed
    recorder.  :meth:`attach` seed-tags every e-node already in the graph as
    ``"original"`` before observing, so the log is total over the graph: any
    chosen node either has a rule record or is provably seed structure.
    Everything in the log is plain picklable data.
    """

    def __init__(self) -> None:
        self.nodes: List[NodeRecord] = []
        self.merges: List[MergeRecord] = []
        self._context: Optional[Tuple[str, int, Optional[int], Optional[str]]] = None

    def __len__(self) -> int:
        return len(self.nodes)

    # -- rule context (driven by the engine's apply loop) ---------------------

    def set_context(
        self,
        rule: str,
        iteration: int,
        matched_class: Optional[int] = None,
        subst: Optional[str] = None,
    ) -> None:
        """Tag subsequent creations/unions with the applying rule."""
        self._context = (rule, iteration, matched_class, subst)

    def clear_context(self) -> None:
        self._context = None

    # -- observer protocol ----------------------------------------------------

    def on_add(self, class_id: int, enode) -> None:
        rule, iteration, matched, subst = self._context or (ORIGINAL, -1, None, None)
        self.nodes.append(
            NodeRecord(
                class_id=class_id,
                op=enode.op,
                children=tuple(enode.children),
                payload=enode.payload,
                rule=rule,
                iteration=iteration,
                matched_class=matched,
                subst=subst,
                pid=os.getpid(),
            )
        )

    def on_union(self, root: int, other: int) -> None:
        rule, iteration, _, _ = self._context or (REBUILD, -1, None, None)
        self.merges.append(
            MergeRecord(root=root, other=other, rule=rule, iteration=iteration, pid=os.getpid())
        )

    # -- attachment -----------------------------------------------------------

    def attach(self, egraph) -> None:
        """Seed-tag every existing e-node as ``original`` and start observing."""
        for class_id, enode in egraph.enodes():
            self.on_add(class_id, enode)
        egraph.attach_observer(self)

    def detach(self, egraph) -> None:
        egraph.detach_observer(self)
        self._context = None

    # -- cross-process buffers ------------------------------------------------

    def export(self) -> Dict[str, List[Dict[str, object]]]:
        """The picklable buffer a worker ships back to its parent."""
        return {
            "nodes": [record.to_dict() for record in self.nodes],
            "merges": [record.to_dict() for record in self.merges],
        }

    def merge(self, buffer: Dict[str, List[Dict[str, object]]], **extra) -> None:
        """Graft a worker's exported buffer into this log.

        ``extra`` keys (e.g. ``window=3``) are stamped onto every merged
        record *without* overwriting tags the worker already applied — a
        window worker's own ``window=`` stamp survives the job-level merge.
        The recording ``pid`` is already in each record.
        """
        for data in buffer.get("nodes", ()):
            record = NodeRecord.from_dict(data)
            for key, value in extra.items():
                record.extra.setdefault(key, value)
            self.nodes.append(record)
        for data in buffer.get("merges", ()):
            merge_record = MergeRecord.from_dict(data)
            for key, value in extra.items():
                merge_record.extra.setdefault(key, value)
            self.merges.append(merge_record)

    # -- lookup ---------------------------------------------------------------

    def canonical_index(self, egraph) -> Dict[object, NodeRecord]:
        """Map every recorded e-node, canonicalized under the graph's *final*
        union-find, to its creation record.

        Rebuild's congruence repair rewrites e-nodes (children remapped to
        canonical ids) without observer callbacks, so creation-time identity
        is not stable; re-canonicalizing both sides at lookup time is.  The
        first writer wins on collisions — seed records are appended before
        rule records, so a node that existed originally stays ``original``
        even if a rule re-derived it.  Records whose ids do not belong to
        this e-graph (a merged log spanning several graphs) are skipped.
        """
        from repro.egraph.egraph import ENode

        uf = egraph.union_find
        limit = len(uf)
        index: Dict[object, NodeRecord] = {}
        for record in self.nodes:
            if record.class_id >= limit or any(c >= limit for c in record.children):
                continue
            node = ENode(record.op, tuple(record.children), record.payload).canonicalize(uf)
            index.setdefault(node, record)
        return index


# -- the installed recorder ----------------------------------------------------

_RECORDER: Optional[ProvenanceLog] = None


def install_recorder(recorder: Optional[ProvenanceLog] = None) -> ProvenanceLog:
    """Install (and return) the process-wide provenance recorder."""
    global _RECORDER
    _RECORDER = recorder or ProvenanceLog()
    return _RECORDER


def uninstall_recorder() -> Optional[ProvenanceLog]:
    """Remove and return the installed recorder (None when none was active)."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def current_recorder() -> Optional[ProvenanceLog]:
    return _RECORDER


def recording_enabled() -> bool:
    return _RECORDER is not None


class recording:
    """Context manager: install a fresh recorder, yield it, restore the old one.

    Call sites scope one log per saturation run (the pipeline's ``saturate``
    pass, a partition window) so a log never spans two e-graphs' id spaces;
    the scoped log is then merged into the outer recorder, exactly like a
    worker's trace buffer.
    """

    def __init__(self, recorder: Optional[ProvenanceLog] = None) -> None:
        self.recorder = recorder or ProvenanceLog()
        self._previous: Optional[ProvenanceLog] = None

    def __enter__(self) -> ProvenanceLog:
        global _RECORDER
        self._previous = _RECORDER
        _RECORDER = self.recorder
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        global _RECORDER
        _RECORDER = self._previous


# -- attribution ---------------------------------------------------------------


@dataclass
class RuleYield:
    """One rule's funnel: matches → applications → survivors → net QoR."""

    rule: str
    matches: int = 0
    applications: int = 0
    #: Chosen e-nodes of the final extraction this rule created.
    surviving_nodes: int = 0
    #: The AND subset of ``surviving_nodes`` (the circuit-size currency).
    surviving_ands: int = 0
    #: ANDs the final circuit would grow by if this rule's surviving choices
    #: reverted to seed structure (positive = the rule earned that many ANDs).
    delta_ands: Optional[int] = None
    delta_levels: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "matches": self.matches,
            "applications": self.applications,
            "surviving_nodes": self.surviving_nodes,
            "surviving_ands": self.surviving_ands,
            "delta_ands": self.delta_ands,
            "delta_levels": self.delta_levels,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RuleYield":
        return cls(
            rule=str(data["rule"]),
            matches=int(data.get("matches", 0)),
            applications=int(data.get("applications", 0)),
            surviving_nodes=int(data.get("surviving_nodes", 0)),
            surviving_ands=int(data.get("surviving_ands", 0)),
            delta_ands=data.get("delta_ands"),
            delta_levels=data.get("delta_levels"),
        )


def _sum_optional(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return a + b


@dataclass
class RuleAttribution:
    """Where the final circuit's structure came from, rule by rule.

    Node accounting is over the realized extraction DAG: the chosen e-nodes
    reachable from the circuit outputs.  By construction the per-rule
    ``surviving_ands`` of non-``original`` rules sum to
    ``total_ands - original_ands`` — the final circuit's non-original AND
    count.  ``final_ands``/``final_levels`` are measured on the strashed
    realized AIG (structural hashing can fold a chosen ``x AND x`` away, so
    they may sit at or below ``total_ands``).
    """

    total_nodes: int = 0
    total_ands: int = 0
    original_nodes: int = 0
    original_ands: int = 0
    seed_ands: Optional[int] = None
    seed_levels: Optional[int] = None
    final_ands: Optional[int] = None
    final_levels: Optional[int] = None
    rules: Dict[str, RuleYield] = field(default_factory=dict)
    #: Derivation chains of the deepest surviving nodes (outermost first).
    derivations: List[List[Dict[str, object]]] = field(default_factory=list)
    #: Windows aggregated into this report (1 for a monolithic flow).
    windows: int = 1

    @property
    def derived_ands(self) -> int:
        """ANDs of the final extraction that did not exist in the seed."""
        return self.total_ands - self.original_ands

    def rule_yields(self) -> List[RuleYield]:
        """Non-original yields, most-surviving first (stable on name)."""
        yields = [y for name, y in self.rules.items() if name != ORIGINAL]
        return sorted(yields, key=lambda y: (-y.surviving_ands, -y.surviving_nodes, y.rule))

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "total_nodes": self.total_nodes,
            "total_ands": self.total_ands,
            "original_nodes": self.original_nodes,
            "original_ands": self.original_ands,
            "derived_ands": self.derived_ands,
            "seed_ands": self.seed_ands,
            "seed_levels": self.seed_levels,
            "final_ands": self.final_ands,
            "final_levels": self.final_levels,
            "windows": self.windows,
            "rules": {name: y.to_dict() for name, y in sorted(self.rules.items())},
            "derivations": [list(chain) for chain in self.derivations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RuleAttribution":
        return cls(
            total_nodes=int(data.get("total_nodes", 0)),
            total_ands=int(data.get("total_ands", 0)),
            original_nodes=int(data.get("original_nodes", 0)),
            original_ands=int(data.get("original_ands", 0)),
            seed_ands=data.get("seed_ands"),
            seed_levels=data.get("seed_levels"),
            final_ands=data.get("final_ands"),
            final_levels=data.get("final_levels"),
            rules={
                name: RuleYield.from_dict(y) for name, y in data.get("rules", {}).items()
            },
            derivations=[list(chain) for chain in data.get("derivations", [])],
            windows=int(data.get("windows", 1)),
        )

    @classmethod
    def aggregate(cls, parts: Iterable["RuleAttribution"]) -> "RuleAttribution":
        """Sum per-window attributions into one report (window-index order).

        Counters and per-rule yields add; QoR fields add None-aware (a window
        whose realization failed contributes nothing).  Derivation chains are
        concatenated in order and capped.
        """
        total = cls(windows=0)
        for part in parts:
            total.windows += part.windows
            total.total_nodes += part.total_nodes
            total.total_ands += part.total_ands
            total.original_nodes += part.original_nodes
            total.original_ands += part.original_ands
            total.seed_ands = _sum_optional(total.seed_ands, part.seed_ands)
            total.seed_levels = _sum_optional(total.seed_levels, part.seed_levels)
            total.final_ands = _sum_optional(total.final_ands, part.final_ands)
            total.final_levels = _sum_optional(total.final_levels, part.final_levels)
            for name, y in part.rules.items():
                into = total.rules.setdefault(name, RuleYield(rule=name))
                into.matches += y.matches
                into.applications += y.applications
                into.surviving_nodes += y.surviving_nodes
                into.surviving_ands += y.surviving_ands
                into.delta_ands = _sum_optional(into.delta_ands, y.delta_ands)
                into.delta_levels = _sum_optional(into.delta_levels, y.delta_levels)
            if len(total.derivations) < 3:
                total.derivations.extend(part.derivations[: 3 - len(total.derivations)])
        return total

    def render(self) -> str:
        """The rule-yield table ``emorphic explain`` prints."""

        def opt(value: Optional[int], signed: bool = False) -> str:
            if value is None:
                return "-"
            return f"{value:+d}" if signed else str(value)

        lines = [
            "rule yield (chosen e-nodes surviving into the final extraction):",
            f"  {'rule':24s} {'matches':>8s} {'applied':>8s} {'nodes':>6s} {'ands':>6s} "
            f"{'Δands':>6s} {'Δlev':>5s}",
        ]
        original = self.rules.get(ORIGINAL)
        if original is not None:
            lines.append(
                f"  {ORIGINAL:24s} {'-':>8s} {'-':>8s} {original.surviving_nodes:6d} "
                f"{original.surviving_ands:6d} {'-':>6s} {'-':>5s}"
            )
        for y in self.rule_yields():
            if y.matches == 0 and y.applications == 0 and y.surviving_nodes == 0:
                continue  # never fired: noise in the table, still in to_dict()
            lines.append(
                f"  {y.rule:24s} {y.matches:8d} {y.applications:8d} {y.surviving_nodes:6d} "
                f"{y.surviving_ands:6d} {opt(y.delta_ands, signed=True):>6s} "
                f"{opt(y.delta_levels, signed=True):>5s}"
            )
        window_note = f" across {self.windows} windows" if self.windows > 1 else ""
        lines.append(
            f"  extraction{window_note}: {self.total_nodes} nodes / {self.total_ands} ands "
            f"({self.derived_ands} from rules, {self.original_ands} original)"
        )
        if self.seed_ands is not None or self.final_ands is not None:
            lines.append(
                f"  seed (ands, levels) = ({opt(self.seed_ands)}, {opt(self.seed_levels)}) "
                f"-> final ({opt(self.final_ands)}, {opt(self.final_levels)})"
            )
        for chain in self.derivations:
            if not chain:
                continue
            head = chain[0]
            lines.append(
                f"  deepest derivation (class {head.get('class')}, depth {head.get('depth')}):"
            )
            for hop in chain:
                if hop.get("rule") == ORIGINAL:
                    lines.append(f"    c{hop.get('class')} {hop.get('op')}: original")
                else:
                    lines.append(
                        f"    c{hop.get('class')} {hop.get('op')} <- {hop.get('rule')}"
                        f"@{hop.get('iteration')} (matched c{hop.get('matched')}, "
                        f"subst {hop.get('subst')})"
                    )
        return "\n".join(lines)


def _reachable_extraction(egraph, extraction, roots) -> Dict[int, object]:
    """Canonical ``class id -> chosen node`` over classes reachable from roots."""
    find = egraph.find
    uf = egraph.union_find
    canonical: Dict[int, object] = {}
    for cid, node in extraction.items():
        canonical.setdefault(find(cid), node.canonicalize(uf))
    reachable: Dict[int, object] = {}
    stack = [find(root) for root in roots]
    while stack:
        cid = stack.pop()
        if cid in reachable:
            continue
        node = canonical.get(cid)
        if node is None:
            continue  # missing choice: realization would fail loudly elsewhere
        reachable[cid] = node
        stack.extend(find(child) for child in node.children)
    return reachable


def _and_depths(egraph, chosen: Dict[int, object]) -> Dict[int, int]:
    """AND-depth per chosen class (iterative; cycles collapse to depth 0)."""
    from repro.egraph.language import AND

    find = egraph.find
    depths: Dict[int, int] = {}
    for root in chosen:
        stack = [(root, False)]
        onstack = set()
        while stack:
            cid, expanded = stack.pop()
            if cid in depths:
                continue
            node = chosen.get(cid)
            if node is None:
                depths[cid] = 0
                continue
            children = [find(c) for c in node.children]
            if not expanded:
                if cid in onstack:
                    depths[cid] = 0  # defensive: a cyclic choice set
                    continue
                onstack.add(cid)
                stack.append((cid, True))
                stack.extend((c, False) for c in children if c not in depths)
                continue
            onstack.discard(cid)
            child_depth = max((depths.get(c, 0) for c in children), default=0)
            depths[cid] = child_depth + (1 if node.op == AND else 0)
    return depths


def _derivation_chain(
    egraph,
    chosen: Dict[int, object],
    index: Dict[object, NodeRecord],
    start: int,
    depth: int,
    limit: int = 12,
) -> List[Dict[str, object]]:
    """Follow ``matched_class`` links from ``start`` down to seed structure."""
    find = egraph.find
    chain: List[Dict[str, object]] = []
    visited = set()
    cid = start
    while cid is not None and cid not in visited and len(chain) < limit:
        visited.add(cid)
        node = chosen.get(cid)
        if node is None:
            break
        record = index.get(node)
        rule = record.rule if record is not None else ORIGINAL
        hop: Dict[str, object] = {"class": cid, "op": node.op, "rule": rule}
        if not chain:
            hop["depth"] = depth
        if record is None or rule == ORIGINAL:
            chain.append(hop)
            break
        hop["iteration"] = record.iteration
        hop["matched"] = record.matched_class
        hop["subst"] = record.subst
        chain.append(hop)
        cid = None if record.matched_class is None else find(record.matched_class)
    return chain


def attribute_extraction(
    circuit,
    extraction: Dict[int, object],
    log: ProvenanceLog,
    profile=None,
    final_aig=None,
    compute_deltas: bool = True,
    max_chains: int = 1,
) -> RuleAttribution:
    """Walk a final extraction back through a provenance log.

    ``circuit`` is the :class:`~repro.conversion.dag2eg.CircuitEGraph` the
    extraction was chosen from, ``profile`` the run's ``SaturationProfile``
    (supplies the matches/applications columns), ``final_aig`` the already
    realized (strashed) extraction when the caller has one.  QoR deltas are
    estimated fail-soft: a rule whose ablated extraction cannot be realized
    (cyclic after reverting) reports ``None`` deltas instead of raising.
    """
    from repro.aig.levels import logic_depth
    from repro.conversion.eg2dag import extraction_to_aig
    from repro.egraph.language import AND

    egraph = circuit.egraph
    chosen = _reachable_extraction(egraph, extraction, circuit.output_classes)
    index = log.canonical_index(egraph)

    report = RuleAttribution()
    by_rule: Dict[str, List[int]] = {}
    for cid, node in chosen.items():
        record = index.get(node)
        rule = record.rule if record is not None else ORIGINAL
        y = report.rules.setdefault(rule, RuleYield(rule=rule))
        y.surviving_nodes += 1
        report.total_nodes += 1
        if node.op == AND:
            y.surviving_ands += 1
            report.total_ands += 1
        by_rule.setdefault(rule, []).append(cid)
    original = report.rules.get(ORIGINAL)
    if original is not None:
        report.original_nodes = original.surviving_nodes
        report.original_ands = original.surviving_ands

    if profile is not None:
        for name, stats in profile.rules.items():
            y = report.rules.setdefault(name, RuleYield(rule=name))
            y.matches = stats.matches_found
            y.applications = stats.applications

    # Seed / final QoR (fail-soft: a non-realizable side reports None).
    seed_extraction = None
    try:
        seed_extraction = circuit.original_extraction()
        seed_aig = extraction_to_aig(circuit, seed_extraction, name="seed").strash()
        report.seed_ands = seed_aig.num_ands
        report.seed_levels = logic_depth(seed_aig)
    except (ValueError, KeyError):
        seed_extraction = None
    try:
        if final_aig is None:
            final_aig = extraction_to_aig(circuit, chosen, name="final").strash()
        report.final_ands = final_aig.num_ands
        report.final_levels = logic_depth(final_aig)
    except (ValueError, KeyError):
        final_aig = None

    if compute_deltas and seed_extraction is not None and final_aig is not None:
        find = egraph.find
        seed_canonical = {find(cid): node for cid, node in seed_extraction.items()}
        for rule, class_ids in by_rule.items():
            if rule == ORIGINAL:
                continue
            ablated = dict(chosen)
            reverted = 0
            for cid in class_ids:
                fallback = seed_canonical.get(cid)
                if fallback is not None:
                    ablated[cid] = fallback
                    reverted += 1
            if reverted == 0:
                continue
            # Reverted choices may reach seed classes outside the chosen set.
            for cid, node in seed_canonical.items():
                ablated.setdefault(cid, node)
            try:
                ablated_aig = extraction_to_aig(circuit, ablated, name="ablated").strash()
            except (ValueError, KeyError):
                continue  # reverting created a cycle: contribution not separable
            y = report.rules[rule]
            y.delta_ands = ablated_aig.num_ands - report.final_ands
            y.delta_levels = logic_depth(ablated_aig) - report.final_levels

    if max_chains > 0:
        depths = _and_depths(egraph, chosen)
        derived = [
            cid
            for cid, node in chosen.items()
            if index.get(node) is not None and index[node].rule != ORIGINAL
        ]
        derived.sort(key=lambda cid: (-depths.get(cid, 0), cid))
        for cid in derived[:max_chains]:
            chain = _derivation_chain(egraph, chosen, index, cid, depths.get(cid, 0))
            if chain:
                report.derivations.append(chain)
    return report
