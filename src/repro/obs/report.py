"""Static HTML rendering of the run ledger (``emorphic report``).

Dependency-free by construction: trend sparklines and growth curves are
inline SVG polylines, the pass-runtime waterfall is plain CSS bars, and the
whole report is one self-contained file suitable for a CI artifact.  The
input is the same record list ``emorphic history`` consumes, so the two
surfaces can never disagree about what happened.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.ledger import QOR_METRICS, compare_group, group_records

__all__ = ["render_history_html", "write_history_html"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto; max-width: 60em;
       color: #1c2733; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; border-bottom: 1px solid #d8dee4;
     padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.6em 0; font-size: 0.85em; }
th, td { border: 1px solid #d8dee4; padding: 0.25em 0.6em; text-align: right; }
th { background: #f2f5f8; } td.name { text-align: left; font-family: monospace; }
.spark { vertical-align: middle; } .regressed { color: #b32424; font-weight: 600; }
.improved { color: #1a7a36; }
.bar { background: #4c8dbf; height: 0.9em; display: inline-block; }
.barlabel { font-size: 0.8em; font-family: monospace; }
.meta { color: #5b6a79; font-size: 0.85em; }
"""


def _sparkline(values: List[float], width: int = 120, height: int = 28) -> str:
    """An inline SVG polyline over ``values`` (flat line when degenerate)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = width / max(n - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{height - 3 - (v - lo) / span * (height - 6):.1f}"
        for i, v in enumerate(values)
    )
    last_y = height - 3 - (values[-1] - lo) / span * (height - 6)
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#4c8dbf" stroke-width="1.5"/>'
        f'<circle cx="{(n - 1) * step:.1f}" cy="{last_y:.1f}" r="2.5" fill="#b35c24"/>'
        "</svg>"
    )


def _ratio_cell(ratio: Optional[float]) -> str:
    if ratio is None:
        return "<td>-</td>"
    cls = "regressed" if ratio > 1.02 else ("improved" if ratio < 0.98 else "")
    return f'<td class="{cls}">{ratio:.3f}x</td>'


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _waterfall(pass_runtimes: List[List[object]]) -> str:
    """Pass-runtime waterfall: one CSS bar per pass, scaled to the longest."""
    rows = [(str(name), float(t)) for name, t in pass_runtimes]
    longest = max((t for _, t in rows), default=0.0) or 1.0
    out = ["<table>", "<tr><th>pass</th><th>runtime</th><th></th></tr>"]
    for name, t in rows:
        width = max(1, int(t / longest * 240))
        out.append(
            f'<tr><td class="name">{html.escape(name)}</td><td>{t:.4f}s</td>'
            f'<td style="text-align:left"><span class="bar" style="width:{width}px"></span></td></tr>'
        )
    out.append("</table>")
    return "\n".join(out)


def _growth_curves(resource: Dict[str, object]) -> str:
    """SVG growth curves (nodes per iteration) from a resource payload.

    Accepts both shapes the ledger stores: a single sample (``curve`` key)
    and a flow-level aggregate (``curves`` list of tagged samples).
    """
    curves: List[Dict[str, object]] = []
    if resource.get("curve"):
        curves = [{"label": resource.get("label", ""), "extra": {}, "curve": resource["curve"]}]
    elif resource.get("curves"):
        curves = list(resource["curves"])
    if not curves:
        return ""
    out = ["<table>", "<tr><th>scope</th><th>iters</th><th>final nodes</th><th>growth</th></tr>"]
    for entry in curves:
        points = list(entry.get("curve") or [])
        if not points:
            continue
        nodes = [float(p.get("nodes", 0)) for p in points]
        tags = " ".join(f"{k}={v}" for k, v in sorted((entry.get("extra") or {}).items()))
        label = html.escape(" ".join(filter(None, [str(entry.get("label", "")), tags])))
        out.append(
            f'<tr><td class="name">{label}</td><td>{len(points)}</td>'
            f"<td>{int(nodes[-1])}</td><td>{_sparkline(nodes)}</td></tr>"
        )
    out.append("</table>")
    return "\n".join(out)


def _rule_yield(attribution: Dict[str, object], top: int = 12) -> str:
    rules = attribution.get("rules") or {}
    if not rules:
        return ""
    ranked = sorted(rules.items(), key=lambda kv: (-int(kv[1]), kv[0]))[:top]
    out = ["<table>", "<tr><th>rule</th><th>surviving ands</th></tr>"]
    for name, ands in ranked:
        out.append(f'<tr><td class="name">{html.escape(str(name))}</td><td>{int(ands)}</td></tr>')
    out.append("</table>")
    return "\n".join(out)


def render_history_html(records: List[Dict[str, object]], window: int = 5) -> str:
    """The full report: one section per (circuit, script, config) group."""
    groups = group_records(records)
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>emorphic run history</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>emorphic run history</h1>",
        f'<p class="meta">{len(records)} records · {len(groups)} groups · '
        f"baseline = median of previous {window} runs</p>",
    ]
    if not records:
        parts.append("<p>The ledger is empty.</p>")
    for (circuit, script, cfg), history in sorted(groups.items()):
        latest = history[-1]
        comparison = compare_group(history, window=window)
        title = html.escape(f"{circuit or '?'} · {script or '?'}")
        parts.append(f"<h2>{title}</h2>")
        parts.append(
            f'<p class="meta">kind={html.escape(str(latest.get("kind")))} · '
            f"config @{html.escape(cfg[:12])} · {len(history)} runs</p>"
        )
        parts.append("<table><tr><th>metric</th><th>latest</th><th>baseline</th>"
                     "<th>ratio</th><th>trend</th></tr>")
        for metric in QOR_METRICS + ("runtime",):
            cell = comparison[metric]
            values = [
                v
                for v in (
                    (r.get("qor") or {}).get(metric) if metric != "runtime" else r.get("runtime")
                    for r in history
                )
                if v is not None
            ]
            if cell["latest"] is None and not values:
                continue
            parts.append(
                f'<tr><td class="name">{metric}</td><td>{_fmt(cell["latest"])}</td>'
                f'<td>{_fmt(cell["baseline"])}</td>{_ratio_cell(cell["ratio"])}'
                f"<td>{_sparkline([float(v) for v in values])}</td></tr>"
            )
        parts.append("</table>")
        if latest.get("pass_runtimes"):
            parts.append("<h3>pass runtimes (latest run)</h3>")
            parts.append(_waterfall(latest["pass_runtimes"]))
        if latest.get("resource"):
            growth = _growth_curves(latest["resource"])
            if growth:
                parts.append("<h3>e-graph growth (latest run)</h3>")
                parts.append(growth)
            peak = (latest["resource"] or {}).get("peak_rss_bytes")
            if peak:
                parts.append(
                    f'<p class="meta">peak RSS: {int(peak) / (1024 * 1024):.1f} MiB</p>'
                )
        if latest.get("attribution"):
            table = _rule_yield(latest["attribution"])
            if table:
                parts.append("<h3>rule yield (latest run)</h3>")
                parts.append(table)
    parts.append("</body></html>")
    return "\n".join(parts)


def write_history_html(
    path: Union[str, Path], records: List[Dict[str, object]], window: int = 5
) -> None:
    Path(path).write_text(render_history_html(records, window=window))
