"""Gated resource sampler: peak RSS and per-iteration e-graph growth curves.

Mirrors the installed-observer gate of :mod:`repro.obs.trace` and
:mod:`repro.obs.provenance`: when no :class:`ResourceSampler` is installed
(the common case) the saturation hot path pays nothing and every ``to_dict``
payload is byte-identical to a sampler-free build.  When one is installed,
:class:`~repro.engine.engine.SaturationEngine` opens a per-run scope that

* attaches to the e-graph through the observer protocol and counts
  ``on_add``/``on_union`` events,
* takes one ``(classes, nodes)`` snapshot per saturation iteration — the
  growth curve the ROADMAP names as the signal for adaptive window sizing,
* records the process's peak RSS watermark when the run ends,

and embeds the finished :class:`ResourceSample` in the run's
``SaturationProfile`` (and from there in flow results and ledger records).

Cross-process safety follows the tracer exactly: workers install a *fresh*
local sampler, run, and ship ``sampler.export()`` — a plain list of dicts,
picklable — back to the parent, which grafts it with :meth:`ResourceSampler.
merge` at the same barriers as trace spans (portfolio migration barriers,
partition window collection, orchestrate job completion).  Every sample
carries the recording process's ``pid``; merge stamps extra tags (e.g.
``window=3``) with ``setdefault`` so worker-applied tags survive.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional

__all__ = [
    "RESOURCE_SCHEMA",
    "ResourceSample",
    "ResourceSampler",
    "aggregate_samples",
    "current_sampler",
    "install_sampler",
    "peak_rss_bytes",
    "sampling",
    "sampling_enabled",
    "uninstall_sampler",
]

#: Version of the sample payload embedded in profiles and ledger records.
RESOURCE_SCHEMA = 1


def peak_rss_bytes() -> int:
    """This process's peak resident-set watermark, in bytes (0 if unknown).

    Uses the stdlib :mod:`resource` module; ``ru_maxrss`` is kilobytes on
    Linux and bytes on macOS.  The watermark is process-lifetime, so a
    sample's value bounds the run's usage from above rather than isolating
    it — good enough for regression trending and window sizing.
    """
    try:
        import resource as _resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


class ResourceSample:
    """One sampled scope: growth curve, event counts, RSS watermark.

    ``curve`` is a list of per-iteration points
    ``{"iteration", "classes", "nodes", "adds", "unions"}`` (``adds`` and
    ``unions`` cumulative since the scope opened); RSS-only samples (e.g.
    portfolio workers, which never grow an e-graph) have an empty curve.
    """

    __slots__ = ("label", "pid", "peak_rss_bytes", "adds", "unions", "curve", "extra")

    def __init__(
        self,
        label: str,
        pid: Optional[int] = None,
        peak_rss: int = 0,
        adds: int = 0,
        unions: int = 0,
        curve: Optional[List[Dict[str, int]]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.label = label
        self.pid = os.getpid() if pid is None else pid
        self.peak_rss_bytes = peak_rss
        self.adds = adds
        self.unions = unions
        self.curve: List[Dict[str, int]] = curve if curve is not None else []
        self.extra: Dict[str, object] = extra if extra is not None else {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": RESOURCE_SCHEMA,
            "label": self.label,
            "pid": self.pid,
            "peak_rss_bytes": self.peak_rss_bytes,
            "adds": self.adds,
            "unions": self.unions,
            "curve": [dict(point) for point in self.curve],
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ResourceSample":
        return cls(
            label=str(data.get("label", "")),
            pid=int(data.get("pid", 0)),
            peak_rss=int(data.get("peak_rss_bytes", 0)),
            adds=int(data.get("adds", 0)),
            unions=int(data.get("unions", 0)),
            curve=[dict(point) for point in data.get("curve", [])],
            extra=dict(data.get("extra", {})),
        )


class _RunScope:
    """An open sampling scope; implements the e-graph observer protocol.

    The engine drives it: :meth:`snapshot` once per iteration (after
    rebuild, with the counters the iteration report already reads), and the
    observer callbacks count structural events in between.  Countering is
    two integer increments per event — cheap enough that the sampler's
    measured overhead is reported by ``saturate-bench`` rather than assumed.
    """

    __slots__ = ("sample", "_egraph", "_adds", "_unions")

    def __init__(self, sample: ResourceSample, egraph=None) -> None:
        self.sample = sample
        self._egraph = egraph
        self._adds = 0
        self._unions = 0

    # -- e-graph observer protocol --------------------------------------------

    def on_add(self, class_id: int, enode) -> None:
        self._adds += 1

    def on_union(self, root: int, other: int) -> None:
        self._unions += 1

    # -- driven by the engine ---------------------------------------------------

    def snapshot(self, iteration: int, classes: int, nodes: int) -> None:
        """Record one growth-curve point (cumulative adds/unions to date)."""
        self.sample.curve.append(
            {
                "iteration": iteration,
                "classes": classes,
                "nodes": nodes,
                "adds": self._adds,
                "unions": self._unions,
            }
        )


class ResourceSampler:
    """Collects resource samples for one process; merge buffers from workers."""

    def __init__(self) -> None:
        self.samples: List[ResourceSample] = []

    # -- scopes (driven by the engine) ------------------------------------------

    def begin(self, egraph=None, label: str = "saturation") -> _RunScope:
        """Open a sampling scope, attaching to ``egraph`` when given."""
        scope = _RunScope(ResourceSample(label), egraph)
        if egraph is not None:
            egraph.attach_observer(scope)
        return scope

    def end(self, scope: _RunScope) -> ResourceSample:
        """Close a scope: detach, stamp the RSS watermark, keep the sample."""
        if scope._egraph is not None:
            scope._egraph.detach_observer(scope)
            scope._egraph = None
        sample = scope.sample
        sample.adds = scope._adds
        sample.unions = scope._unions
        sample.peak_rss_bytes = peak_rss_bytes()
        self.samples.append(sample)
        return sample

    def note(self, label: str, **extra) -> ResourceSample:
        """Record a curve-less RSS watermark sample (e.g. a pool worker)."""
        sample = ResourceSample(label, peak_rss=peak_rss_bytes(), extra=dict(extra))
        self.samples.append(sample)
        return sample

    # -- cross-process buffers ----------------------------------------------------

    def export(self) -> List[Dict[str, object]]:
        """The picklable buffer a worker ships back to its parent."""
        return [sample.to_dict() for sample in self.samples]

    def merge(self, buffer: List[Dict[str, object]], **extra) -> None:
        """Append a worker's exported buffer, stamping ``extra`` tags.

        Tags use ``setdefault`` so a tag the worker already applied (e.g. a
        window index stamped inside the pool task) survives the merge.
        """
        for data in buffer:
            sample = ResourceSample.from_dict(data)
            for key, value in extra.items():
                sample.extra.setdefault(key, value)
            self.samples.append(sample)


def aggregate_samples(samples: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """Summarize a list of sample dicts into one flow-level payload.

    ``peak_rss_bytes`` is the max across processes (each sample's watermark
    already bounds its process), event counts sum, and the per-sample curves
    are preserved so window-level growth stays inspectable downstream.
    """
    if not samples:
        return None
    return {
        "schema": RESOURCE_SCHEMA,
        "samples": len(samples),
        "pids": sorted({int(s.get("pid", 0)) for s in samples}),
        "peak_rss_bytes": max(int(s.get("peak_rss_bytes", 0)) for s in samples),
        "adds": sum(int(s.get("adds", 0)) for s in samples),
        "unions": sum(int(s.get("unions", 0)) for s in samples),
        "curves": [
            {"label": s.get("label", ""), "extra": dict(s.get("extra", {})), "curve": list(s.get("curve", []))}
            for s in samples
            if s.get("curve")
        ],
    }


# -- the installed sampler -------------------------------------------------------

_SAMPLER: Optional[ResourceSampler] = None


def install_sampler(sampler: Optional[ResourceSampler] = None) -> ResourceSampler:
    """Install (and return) the process-wide resource sampler."""
    global _SAMPLER
    _SAMPLER = sampler or ResourceSampler()
    return _SAMPLER


def uninstall_sampler() -> Optional[ResourceSampler]:
    """Remove and return the installed sampler (None when none was active)."""
    global _SAMPLER
    sampler, _SAMPLER = _SAMPLER, None
    return sampler


def current_sampler() -> Optional[ResourceSampler]:
    return _SAMPLER


def sampling_enabled() -> bool:
    return _SAMPLER is not None


class sampling:
    """Context manager: install a fresh sampler, yield it, restore the old one.

    ``with sampling() as sampler: ...`` — nested uses stack correctly (the
    previous sampler comes back on exit), the same scoped form as
    ``obs.tracing()`` and ``obs_provenance.recording()``.
    """

    def __init__(self, sampler: Optional[ResourceSampler] = None) -> None:
        self.sampler = sampler or ResourceSampler()
        self._previous: Optional[ResourceSampler] = None

    def __enter__(self) -> ResourceSampler:
        global _SAMPLER
        self._previous = _SAMPLER
        _SAMPLER = self.sampler
        return self.sampler

    def __exit__(self, exc_type, exc, tb) -> None:
        global _SAMPLER
        _SAMPLER = self._previous
