#!/usr/bin/env python3
"""Training and using the HOGA-like cost model (the runtime-prioritized mode).

Reproduces the Section IV-D pipeline end to end at example scale:

1. generate structural variants of a few benchmark circuits and label them
   with the internal technology mapper (the stand-in for the ASAP7 flow);
2. train the hop-wise-attention regressor on the labelled variants;
3. report MAPE and Kendall's tau on a held-out split (paper: 25.2% / 0.62);
4. plug the model into the E-morphic flow and compare runtime and QoR
   against the quality-prioritized (mapping-based) mode.

Run with::

    python examples/ml_cost_model.py
"""

from __future__ import annotations

from repro.benchgen import epfl
from repro.costmodel.abc_cost import MappingCostModel
from repro.costmodel.hoga import HogaConfig
from repro.costmodel.train import train_cost_model
from repro.flows.emorphic import EmorphicConfig, run_emorphic_flow
from repro.mapping.library import default_library


def main() -> int:
    library = default_library()

    print("generating training data and fitting the cost model...")
    training_circuits = [epfl.build(name, preset="test") for name in ["mem_ctrl", "sqrt", "adder", "arbiter"]]
    model, report = train_cost_model(
        training_circuits,
        variants_per_circuit=6,
        config=HogaConfig(epochs=200, hidden_dim=24, seed=0),
        cost_model=MappingCostModel(library=library),
    )
    print(f"  training samples: {report.num_train}, held-out samples: {report.num_test}")
    print(f"  delay MAPE:    {report.mape:.1f}%   (paper: 25.2%)")
    print(f"  Kendall tau:   {report.kendall_tau:.2f}    (paper: 0.62)")

    target = epfl.build("sqrt", preset="test")
    print(f"\nrunning E-morphic on {target.name} in both cost-model modes...")

    def flow_config(use_ml: bool) -> EmorphicConfig:
        config = EmorphicConfig(
            rewrite_iterations=4,
            max_egraph_nodes=15_000,
            num_threads=3,
            moves_per_iteration=3,
            use_ml_model=use_ml,
            ml_model=model if use_ml else None,
        )
        config.baseline.use_choices = False
        return config

    quality = run_emorphic_flow(target, flow_config(use_ml=False))
    runtime = run_emorphic_flow(target, flow_config(use_ml=True))

    print(f"  quality-prioritized: delay={quality.delay:7.1f} ps  area={quality.area:7.2f} um^2  "
          f"runtime={quality.runtime:6.1f} s")
    print(f"  runtime-prioritized: delay={runtime.delay:7.1f} ps  area={runtime.area:7.2f} um^2  "
          f"runtime={runtime.runtime:6.1f} s")
    if quality.runtime > 0:
        print(f"  runtime saving with the ML model: "
              f"{100 * (quality.runtime - runtime.runtime) / quality.runtime:.1f}%  (paper: ~28%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
