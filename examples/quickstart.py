#!/usr/bin/env python3
"""Quickstart: optimize one circuit with E-morphic and inspect the result.

Builds a synthetic benchmark circuit, runs the delay-oriented baseline flow
and the E-morphic flow, prints the QoR of both, and shows the runtime
breakdown and the final equivalence check.

Run with::

    python examples/quickstart.py [circuit] [preset]

where ``circuit`` is one of the registered benchmarks (default: sqrt) and
``preset`` is "test" (small, seconds) or "bench" (larger, minutes).
"""

from __future__ import annotations

import sys

from repro.benchgen import epfl
from repro.flows.baseline import BaselineConfig, run_baseline_flow
from repro.flows.emorphic import EmorphicConfig, run_emorphic_flow


def main() -> int:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "sqrt"
    preset = sys.argv[2] if len(sys.argv) > 2 else "test"

    aig = epfl.build(circuit_name, preset=preset)
    stats = aig.stats()
    print(f"circuit {circuit_name}: {stats['pis']} PIs, {stats['pos']} POs, "
          f"{stats['ands']} AND nodes, {stats['levels']} levels")

    print("\nrunning the SOP-balancing baseline flow...")
    baseline = run_baseline_flow(aig, BaselineConfig(use_choices=False))
    print(f"  area  {baseline.area:10.2f} um^2")
    print(f"  delay {baseline.delay:10.2f} ps")
    print(f"  runtime {baseline.runtime:8.2f} s")

    print("\nrunning the E-morphic flow (e-graph resynthesis before mapping)...")
    config = EmorphicConfig(
        rewrite_iterations=5,
        max_egraph_nodes=20_000,
        num_threads=3,
        moves_per_iteration=3,
    )
    config.baseline.use_choices = False
    emorphic = run_emorphic_flow(aig, config)
    print(f"  area  {emorphic.area:10.2f} um^2")
    print(f"  delay {emorphic.delay:10.2f} ps")
    print(f"  runtime {emorphic.runtime:8.2f} s")
    print(f"  explored candidates: {emorphic.num_candidates}")
    if emorphic.equivalence is not None:
        print(f"  equivalence check: {emorphic.equivalence.status}")

    print("\nruntime breakdown (the Figure 9 components):")
    for phase, seconds in emorphic.runtime_breakdown().items():
        print(f"  {phase:20s} {seconds:8.2f} s")

    if baseline.delay > 0:
        delay_gain = 100.0 * (baseline.delay - emorphic.delay) / baseline.delay
        area_gain = 100.0 * (baseline.area - emorphic.area) / baseline.area
        print(f"\ndelay reduction vs baseline: {delay_gain:+.2f}%")
        print(f"area saving vs baseline:     {area_gain:+.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
