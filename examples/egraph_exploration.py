#!/usr/bin/env python3
"""Structural exploration with the e-graph API, step by step.

This example peels the E-morphic flow apart and uses the library's lower
level APIs directly:

1. build a circuit and convert it to an e-graph (direct DAG-to-DAG);
2. run a few equality-saturation iterations on the engine (backoff
   scheduling + op-indexed e-matching) and watch the number of equivalence
   classes grow — including the per-rule telemetry of the run;
3. extract structures with different objectives (node count vs depth) and
   with the island-parallel extraction portfolio — including the per-chain
   accept/reject and migration telemetry of the run;
4. map every extracted structure and compare post-mapping area/delay —
   demonstrating the structural-bias effect the paper targets;
5. the whole exploration runs under a trace (`repro.obs`): the span tree is
   pretty-printed at the end and exported as Chrome trace-event JSON,
   loadable in https://ui.perfetto.dev.

Run with::

    python examples/egraph_exploration.py
"""

from __future__ import annotations

from repro.benchgen import arithmetic
from repro.conversion.dag2eg import aig_to_egraph
from repro.conversion.eg2dag import extraction_to_aig
from repro.egraph.rules import boolean_rules
from repro.engine import EngineLimits, SaturationEngine
from repro.extraction.cost import DepthCost, NodeCountCost
from repro.extraction.engine import PortfolioConfig, portfolio_extract
from repro.extraction.greedy import greedy_extract
from repro.mapping.cut_mapping import map_aig
from repro.mapping.library import default_library
from repro.obs import tracing, write_chrome_trace
from repro.verify.cec import check_equivalence


def report(label: str, aig, library) -> None:
    mapped = map_aig(aig, library)
    print(f"  {label:28s} ands={aig.num_ands:5d}  area={mapped.area:8.2f} um^2  delay={mapped.delay:7.1f} ps")


def main() -> int:
    library = default_library()
    aig = arithmetic.multiplier(4)
    print(f"input circuit: {aig.name} with {aig.num_ands} AND nodes")

    # 1. Direct DAG-to-DAG conversion.
    circuit = aig_to_egraph(aig)
    print(f"initial e-graph: {circuit.egraph.num_classes} classes, {circuit.egraph.num_nodes} e-nodes")

    # 2. Equality saturation, a few iterations (the paper uses 5), on the
    #    engine: backoff scheduling + op-indexed e-matching + match dedup.
    #    Steps 2 and 3 run under a tracer, so every engine phase (per-rule
    #    search/apply, portfolio rounds and chains) lands in one span tree.
    with tracing() as tracer:
        engine = SaturationEngine(
            circuit.egraph,
            boolean_rules(),
            EngineLimits(max_iterations=4, max_nodes=20_000, time_limit=20.0),
            scheduler="backoff",
        )
        profile = engine.run()

        # 3. Extraction with different objectives.
        extractions = {
            "greedy / node count": greedy_extract(circuit.egraph, NodeCountCost()),
            "greedy / depth": greedy_extract(circuit.egraph, DepthCost()),
        }
        portfolio = portfolio_extract(
            circuit.egraph,
            circuit.output_classes,
            cost=DepthCost(),
            config=PortfolioConfig(chains=3, move_budget=96, migrate_every=16, seed=1),
            seed_solution=circuit.original_extraction(),
        )

    print(f"after rewriting ({profile.stop_reason}, scheduler={profile.scheduler}):")
    for it in profile.iterations:
        print(f"  iteration {it.iteration}: {it.num_classes} classes, {it.num_nodes} e-nodes "
              f"({it.elapsed:.2f} s, {it.matches_found} matches, "
              f"{len(it.banned)} rules banned)")
    busiest = sorted(profile.rules.values(), key=lambda r: r.search_time, reverse=True)[:3]
    for rule in busiest:
        print(f"  busiest rule {rule.name}: {rule.matches_found} matches, "
              f"{rule.applications} applications, search {rule.search_time:.2f} s")
    extractions["extraction portfolio"] = portfolio.extraction
    profile = portfolio.profile
    print(f"portfolio extraction: cost {profile.initial_cost:.0f} -> {profile.best_cost:.0f} "
          f"(chain {profile.best_chain} wins, {len(profile.migrations)} migrations, "
          f"{profile.wall_time:.2f} s)")
    for chain in profile.chains:
        print(f"  chain {chain.chain_id} [{chain.kind:7s}] best={chain.best_cost:5.0f} "
              f"accepted={chain.accepted}/{chain.moves} uphill={chain.uphill} "
              f"mean cone={chain.mean_cone:.1f} classes/move")

    # 4. Map every candidate and compare: same function, different QoR.
    print("\npost-mapping comparison of the extracted structures:")
    report("original circuit", aig, library)
    for label, extraction in extractions.items():
        candidate = extraction_to_aig(circuit, extraction, name=label)
        assert check_equivalence(aig, candidate, conflict_budget=50_000).equivalent
        report(label, candidate, library)
    print("\nall candidates verified equivalent to the input circuit")

    # 5. The trace of the exploration: span tree to the terminal, Chrome
    #    trace-event JSON to disk (open in https://ui.perfetto.dev).
    print("\ntrace of the exploration (top two levels):")
    print(tracer.format_tree(max_depth=1))
    write_chrome_trace(tracer, "egraph_exploration_trace.json")
    print(f"\nfull trace ({len(tracer.records)} spans) written to "
          "egraph_exploration_trace.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
